package carlane

import (
	"math"
	"strings"
	"testing"

	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

func testCfg(lanes int) ufld.Config { return ufld.Tiny(resnet.R18, lanes) }

func TestLayoutLanes(t *testing.T) {
	if Ego2.Lanes() != 2 || Quad4.Lanes() != 4 || Mo4.Lanes() != 4 {
		t.Fatal("layout lane counts wrong")
	}
	if MoLane.Lanes() != 2 || TuLane.Lanes() != 4 || MuLane.Lanes() != 4 {
		t.Fatal("benchmark lane counts wrong (paper Fig. 1)")
	}
}

func TestSceneLaneXEndpoints(t *testing.T) {
	s := &Scene{VanishX: 0.5, BottomX: []float64{0.2, 0.8}, Curvature: 0}
	if s.LaneX(0, 1) != 0.2 || s.LaneX(1, 1) != 0.8 {
		t.Fatal("bottom intersection wrong")
	}
	// At the horizon every lane converges to the vanishing point.
	if math.Abs(s.LaneX(0, 0)-0.5) > 1e-12 || math.Abs(s.LaneX(1, 0)-0.5) > 1e-12 {
		t.Fatal("lanes must converge at vanishing point")
	}
}

func TestSceneCurvatureBows(t *testing.T) {
	straight := &Scene{VanishX: 0.5, BottomX: []float64{0.5}, Curvature: 0}
	curved := &Scene{VanishX: 0.5, BottomX: []float64{0.5}, Curvature: 0.1}
	if curved.LaneX(0, 0.5) <= straight.LaneX(0, 0.5) {
		t.Fatal("positive curvature must bow right at mid depth")
	}
	// Curvature vanishes at both endpoints.
	if curved.LaneX(0, 1) != 0.5 {
		t.Fatal("curvature must vanish at bottom")
	}
}

func TestLabelMatchesGeometry(t *testing.T) {
	cfg := testCfg(2)
	rng := tensor.NewRNG(1)
	s := randomScene(Ego2, Sim, rng)
	cells := s.Label(cfg)
	if len(cells) != cfg.Groups() {
		t.Fatalf("label size %d, want %d", len(cells), cfg.Groups())
	}
	ts := anchorTs(s, cfg)
	for lane := 0; lane < 2; lane++ {
		for a, tv := range ts {
			got := cells[lane*cfg.RowAnchors+a]
			x := s.LaneX(lane, tv)
			if x < 0 || x >= 1 {
				if got != ufld.Absent {
					t.Fatalf("out-of-frame lane labeled %d", got)
				}
				continue
			}
			want := int(x * float64(cfg.GridCells))
			if want >= cfg.GridCells {
				want = cfg.GridCells - 1
			}
			if got != want {
				t.Fatalf("lane %d anchor %d: cell %d, want %d", lane, a, got, want)
			}
		}
	}
}

func TestInvisibleLanesAreAbsent(t *testing.T) {
	cfg := testCfg(4)
	rng := tensor.NewRNG(2)
	s := randomScene(Mo4, MoReal, rng)
	cells := s.Label(cfg)
	for a := 0; a < cfg.RowAnchors; a++ {
		if cells[0*cfg.RowAnchors+a] != ufld.Absent || cells[3*cfg.RowAnchors+a] != ufld.Absent {
			t.Fatal("Mo4 outer lanes must be Absent")
		}
	}
	// Inner lanes should mostly be present.
	present := 0
	for lane := 1; lane <= 2; lane++ {
		for a := 0; a < cfg.RowAnchors; a++ {
			if cells[lane*cfg.RowAnchors+a] != ufld.Absent {
				present++
			}
		}
	}
	if present < cfg.RowAnchors {
		t.Fatalf("only %d inner points present", present)
	}
}

func TestRenderValueRange(t *testing.T) {
	cfg := testCfg(2)
	rng := tensor.NewRNG(3)
	s := randomScene(Ego2, Sim, rng)
	img := s.Render(cfg.InputH, cfg.InputW, rng)
	if img.Dim(0) != 3 || img.Dim(1) != cfg.InputH || img.Dim(2) != cfg.InputW {
		t.Fatalf("render shape %v", img.Shape())
	}
	if img.Min() < 0 || img.Max() > 1 {
		t.Fatalf("render range [%v,%v]", img.Min(), img.Max())
	}
	// Markings must actually be brighter than the road: the brightest
	// pixel below the horizon should be near MarkBrightness.
	if img.Max() < 0.7 {
		t.Fatal("no bright lane markings rendered")
	}
}

func TestRenderMarkingAtLabel(t *testing.T) {
	// The rendered marking must appear at the labeled cell.
	cfg := testCfg(2)
	rng := tensor.NewRNG(4)
	s := randomScene(Ego2, Sim, rng)
	img := s.Render(cfg.InputH, cfg.InputW, rng)
	cells := s.Label(cfg)
	ts := anchorTs(s, cfg)
	checked := 0
	for lane := 0; lane < 2; lane++ {
		for a, tv := range ts {
			c := cells[lane*cfg.RowAnchors+a]
			if c == ufld.Absent {
				continue
			}
			y := int((s.HorizonY + tv*(1-s.HorizonY)) * float64(cfg.InputH))
			if y >= cfg.InputH {
				y = cfg.InputH - 1
			}
			x := int(s.LaneX(lane, tv) * float64(cfg.InputW))
			if x < 1 || x >= cfg.InputW-1 {
				continue
			}
			// Some row may be in a dash gap; look for brightness at
			// x±1.
			peak := img.At(0, y, x)
			for dx := -1; dx <= 1; dx++ {
				if v := img.At(0, y, x+dx); v > peak {
					peak = v
				}
			}
			if peak > 0.5 {
				checked++
			}
		}
	}
	if checked < cfg.RowAnchors {
		t.Fatalf("markings found at only %d labeled points", checked)
	}
}

func TestDomainsShiftStatistics(t *testing.T) {
	cfg := testCfg(2)
	rng := tensor.NewRNG(5)
	base := randomScene(Ego2, Sim, rng)
	render := func(d Domain, seed uint64) *tensor.Tensor {
		r := tensor.NewRNG(seed)
		img := base.Render(cfg.InputH, cfg.InputW, r)
		ApplyDomain(img, d, r)
		return img
	}
	sim := render(Sim, 10)
	mo := render(MoReal, 10)
	tu := render(TuReal, 10)
	simMean := sim.Mean()
	moMean := mo.Mean()
	tuMean := tu.Mean()
	if !(moMean < simMean-0.05) {
		t.Fatalf("MoReal must be darker than sim: %.3f vs %.3f", moMean, simMean)
	}
	if !(tuMean > simMean+0.03) {
		t.Fatalf("TuReal (hazy) must be brighter than sim: %.3f vs %.3f", tuMean, simMean)
	}
	// Contrast (std) drops under haze.
	_, simStd := sim.MeanStd()
	_, tuStd := tu.MeanStd()
	if !(tuStd < simStd) {
		t.Fatalf("TuReal must be lower contrast: %.3f vs %.3f", tuStd, simStd)
	}
}

func TestDomainDeterminism(t *testing.T) {
	cfg := testCfg(2)
	gen := func() *ufld.Dataset {
		return Generate(cfg, SplitSpec{Name: "x", Layouts: []Layout{Ego2}, Domains: []Domain{MoReal}, N: 3, Seed: 42})
	}
	a, b := gen(), gen()
	for i := range a.Samples {
		if !a.Samples[i].Image.AllClose(b.Samples[i].Image, 0) {
			t.Fatal("generation is not deterministic")
		}
		for j := range a.Samples[i].Cells {
			if a.Samples[i].Cells[j] != b.Samples[i].Cells[j] {
				t.Fatal("labels are not deterministic")
			}
		}
	}
}

func TestGenerateRejectsLaneMismatch(t *testing.T) {
	cfg := testCfg(2)
	defer func() {
		if recover() == nil {
			t.Fatal("4-lane layout with 2-lane config accepted")
		}
	}()
	Generate(cfg, SplitSpec{Name: "bad", Layouts: []Layout{Quad4}, Domains: []Domain{Sim}, N: 1, Seed: 1})
}

func TestBuildBenchmarks(t *testing.T) {
	sizes := TestSizes()
	for _, name := range AllBenchmarks {
		b := Build(name, resnet.R18, ufld.Tiny, sizes, 7)
		if b.Cfg.Lanes != name.Lanes() {
			t.Fatalf("%s: config lanes %d", name, b.Cfg.Lanes)
		}
		if b.SourceTrain.Len() != sizes.SourceTrain || b.TargetVal.Len() != sizes.TargetVal {
			t.Fatalf("%s: split sizes wrong", name)
		}
		// Source is sim; target is not.
		if b.SourceTrain.Domain != "sim" {
			t.Fatalf("%s: source domain %q", name, b.SourceTrain.Domain)
		}
		if b.TargetVal.Domain == "sim" {
			t.Fatalf("%s: target domain is sim", name)
		}
	}
}

func TestMuLaneInterleavesTargets(t *testing.T) {
	b := Build(MuLane, resnet.R18, ufld.Tiny, TestSizes(), 9)
	if b.TargetVal.Domain != "mixed" {
		t.Fatalf("MuLane target domain %q, want mixed", b.TargetVal.Domain)
	}
	// Even samples are Mo4 (outer lanes absent), odd are Quad4.
	s0 := b.TargetVal.Samples[0]
	s1 := b.TargetVal.Samples[1]
	outerAbsent := func(s ufld.Sample) bool {
		cfg := b.Cfg
		for a := 0; a < cfg.RowAnchors; a++ {
			if s.Cells[a] != ufld.Absent {
				return false
			}
		}
		return true
	}
	if !outerAbsent(s0) {
		t.Fatal("even MuLane samples must be model-vehicle frames")
	}
	if outerAbsent(s1) {
		t.Fatal("odd MuLane samples must be 4-lane highway frames")
	}
}

func TestComputeStats(t *testing.T) {
	cfg := testCfg(2)
	ds := Generate(cfg, SplitSpec{Name: "s", Layouts: []Layout{Ego2}, Domains: []Domain{Sim}, N: 4, Seed: 3})
	st := ComputeStats(ds)
	if st.N != 4 || st.MeanBrightness <= 0 || st.MeanBrightness >= 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.LabeledPoints+st.AbsentPoints != 4*cfg.Groups() {
		t.Fatal("point counts don't sum")
	}
	if st.LabeledPoints == 0 {
		t.Fatal("no labeled points generated")
	}
}

func TestWriteBenchmarkTable(t *testing.T) {
	b := Build(MoLane, resnet.R18, ufld.Tiny, TestSizes(), 11)
	var sb strings.Builder
	WriteBenchmarkTable(&sb, b)
	out := sb.String()
	for _, want := range []string{"MoLane", "source-train", "target-val", "sim", "molane-real"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestDomainStringAndUnknownPanics(t *testing.T) {
	if Sim.String() != "sim" || MoReal.String() != "molane-real" || TuReal.String() != "tulane-real" {
		t.Fatal("domain names wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown domain accepted")
		}
	}()
	ApplyDomain(tensor.New(3, 4, 4), Domain(99), tensor.NewRNG(1))
}
