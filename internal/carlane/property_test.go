package carlane

import (
	"testing"
	"testing/quick"

	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/tensor"
	"ldbnadapt/internal/ufld"
)

// TestPropLabelsInRange: for arbitrary random scenes, every label is
// either Absent or a valid cell index.
func TestPropLabelsInRange(t *testing.T) {
	cfg := ufld.Tiny(resnet.R18, 4)
	f := func(seed uint64, layoutRaw, domainRaw uint8) bool {
		layout := []Layout{Quad4, Mo4}[int(layoutRaw)%2]
		domain := []Domain{Sim, MoReal, TuReal}[int(domainRaw)%3]
		s := randomScene(layout, domain, tensor.NewRNG(seed))
		for _, c := range s.Label(cfg) {
			if c != ufld.Absent && (c < 0 || c >= cfg.GridCells) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropRenderedImagesAreNormalized: rendering + any domain keeps
// pixel values in [0, 1] with no NaNs.
func TestPropRenderedImagesAreNormalized(t *testing.T) {
	cfg := ufld.Tiny(resnet.R18, 2)
	f := func(seed uint64, domainRaw uint8) bool {
		domain := []Domain{Sim, MoReal, TuReal}[int(domainRaw)%3]
		rng := tensor.NewRNG(seed)
		s := randomScene(Ego2, domain, rng)
		img := s.Render(cfg.InputH, cfg.InputW, rng)
		ApplyDomain(img, domain, rng)
		return !img.HasNaN() && img.Min() >= 0 && img.Max() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropAnchorsAreMonotonic: depth parameters of the row anchors
// increase strictly from horizon to bottom.
func TestPropAnchorsAreMonotonic(t *testing.T) {
	cfg := ufld.Tiny(resnet.R18, 2)
	f := func(seed uint64) bool {
		s := randomScene(Ego2, Sim, tensor.NewRNG(seed))
		ts := anchorTs(s, cfg)
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				return false
			}
		}
		return ts[0] > 0 && ts[len(ts)-1] <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropVisibleLanesMostlyLabeled: a fully-visible Ego2 scene labels
// at least half of each lane's anchors (lanes can exit the frame near
// the horizon, but not everywhere).
func TestPropVisibleLanesMostlyLabeled(t *testing.T) {
	cfg := ufld.Tiny(resnet.R18, 2)
	f := func(seed uint64) bool {
		s := randomScene(Ego2, Sim, tensor.NewRNG(seed))
		cells := s.Label(cfg)
		for lane := 0; lane < 2; lane++ {
			present := 0
			for a := 0; a < cfg.RowAnchors; a++ {
				if cells[lane*cfg.RowAnchors+a] != ufld.Absent {
					present++
				}
			}
			if present < cfg.RowAnchors/2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
