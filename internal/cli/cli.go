// Package cli holds the flag-parsing helpers shared by the ldtrain,
// ldadapt and ldbench commands.
package cli

import (
	"fmt"
	"strings"

	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/resnet"
	"ldbnadapt/internal/ufld"
)

// ParseBenchmark maps a benchmark name to its identifier.
func ParseBenchmark(s string) (carlane.BenchmarkName, error) {
	switch s {
	case "MoLane":
		return carlane.MoLane, nil
	case "TuLane":
		return carlane.TuLane, nil
	case "MuLane":
		return carlane.MuLane, nil
	}
	return "", fmt.Errorf("unknown benchmark %q (want MoLane|TuLane|MuLane)", s)
}

// ParseBenchmarks maps a comma-separated list of benchmark names.
func ParseBenchmarks(s string) ([]carlane.BenchmarkName, error) {
	var out []carlane.BenchmarkName
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		b, err := ParseBenchmark(part)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmarks in %q", s)
	}
	return out, nil
}

// ParseVariant maps a backbone name ("R-18"/"R-34") to its identifier.
func ParseVariant(s string) (resnet.Variant, error) {
	switch s {
	case "R-18":
		return resnet.R18, nil
	case "R-34":
		return resnet.R34, nil
	}
	return 0, fmt.Errorf("unknown model %q (want R-18|R-34)", s)
}

// ParseVariants maps a comma-separated list of backbone names.
func ParseVariants(s string) ([]resnet.Variant, error) {
	var out []resnet.Variant
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := ParseVariant(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no models in %q", s)
	}
	return out, nil
}

// ParseProfile maps a config-profile name to its factory.
func ParseProfile(s string) (func(resnet.Variant, int) ufld.Config, error) {
	switch s {
	case "tiny":
		return ufld.Tiny, nil
	case "small":
		return ufld.Small, nil
	case "repro":
		return ufld.Repro, nil
	case "full-scale":
		return ufld.FullScale, nil
	}
	return nil, fmt.Errorf("unknown profile %q (want tiny|small|repro|full-scale)", s)
}
