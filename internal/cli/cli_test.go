package cli

import (
	"testing"

	"ldbnadapt/internal/carlane"
	"ldbnadapt/internal/resnet"
)

func TestParseBenchmark(t *testing.T) {
	for name, want := range map[string]carlane.BenchmarkName{
		"MoLane": carlane.MoLane, "TuLane": carlane.TuLane, "MuLane": carlane.MuLane,
	} {
		got, err := ParseBenchmark(name)
		if err != nil || got != want {
			t.Fatalf("ParseBenchmark(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseBenchmark("molane"); err == nil {
		t.Fatal("case-mangled name accepted")
	}
}

func TestParseBenchmarks(t *testing.T) {
	got, err := ParseBenchmarks("MoLane, TuLane")
	if err != nil || len(got) != 2 || got[1] != carlane.TuLane {
		t.Fatalf("ParseBenchmarks = %v, %v", got, err)
	}
	if _, err := ParseBenchmarks(""); err == nil {
		t.Fatal("empty list accepted")
	}
	if _, err := ParseBenchmarks("MoLane,Nope"); err == nil {
		t.Fatal("bad entry accepted")
	}
}

func TestParseVariant(t *testing.T) {
	if v, err := ParseVariant("R-18"); err != nil || v != resnet.R18 {
		t.Fatal("R-18 parse failed")
	}
	if v, err := ParseVariant("R-34"); err != nil || v != resnet.R34 {
		t.Fatal("R-34 parse failed")
	}
	if _, err := ParseVariant("R-50"); err == nil {
		t.Fatal("unsupported variant accepted")
	}
}

func TestParseVariants(t *testing.T) {
	got, err := ParseVariants("R-18,R-34")
	if err != nil || len(got) != 2 {
		t.Fatalf("ParseVariants = %v, %v", got, err)
	}
	if _, err := ParseVariants(" , "); err == nil {
		t.Fatal("blank list accepted")
	}
}

func TestParseProfile(t *testing.T) {
	for _, name := range []string{"tiny", "small", "repro", "full-scale"} {
		f, err := ParseProfile(name)
		if err != nil || f == nil {
			t.Fatalf("ParseProfile(%q): %v", name, err)
		}
		cfg := f(resnet.R18, 2)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("profile %q produces invalid config: %v", name, err)
		}
	}
	if _, err := ParseProfile("huge"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
