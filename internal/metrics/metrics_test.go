package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRendersAligned(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 22)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator missing: %q", lines[1])
	}
	if !strings.Contains(out, "1.50") {
		t.Fatal("float formatting wrong")
	}
	if tb.Len() != 2 {
		t.Fatal("Len wrong")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("extremes wrong")
	}
	if Percentile(xs, 50) != 3 {
		t.Fatalf("median = %v", Percentile(xs, 50))
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
	for _, bad := range []float64{-1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v accepted", bad)
				}
			}()
			Percentile(xs, bad)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty input accepted")
		}
	}()
	Percentile(nil, 50)
}

func TestSummarize(t *testing.T) {
	st := Summarize([]float64{1, 2, 3, 4, 100})
	if st.N != 5 || st.Max != 100 || st.P50 != 3 {
		t.Fatalf("stats %+v", st)
	}
	if math.Abs(st.Mean-22) > 1e-9 {
		t.Fatalf("mean %v", st.Mean)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatal("empty summarize")
	}
}

func TestFormatPct(t *testing.T) {
	if FormatPct(0.9219) != "92.19%" {
		t.Fatalf("FormatPct = %q", FormatPct(0.9219))
	}
}

func TestPropPercentileWithinRange(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		n := int(seed % 20)
		if n < 0 {
			n = -n
		}
		n++
		xs := make([]float64, n)
		v := float64(seed % 1000)
		for i := range xs {
			v = math.Mod(v*1103515245+12345, 1000)
			xs[i] = v
		}
		p := float64(pRaw % 101)
		got := Percentile(xs, p)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return m >= lo-1e-6 && m <= hi+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
