// Package metrics provides the small reporting substrate used by the
// experiment harness: aligned text tables and latency/accuracy
// aggregation helpers. It formats *end-of-run summaries* for humans.
//
// It is distinct from internal/obs, the runtime observability layer:
// obs records what happened *during* a run — frame-lifecycle trace
// spans on the virtual clock, control-plane instants, and a registry
// of counters/gauges/histograms — and exports it for machines
// (Perfetto trace JSON, CSV timelines, text dumps). Rule of thumb:
// a table a person reads at the end belongs here; an event or counter
// a tool consumes belongs in obs.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0–100) of xs using
// nearest-rank on a sorted copy. It panics on empty input or p outside
// [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("metrics: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of range", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Stats summarizes a latency or accuracy series.
type Stats struct {
	// N is the sample count.
	N int
	// Mean, P50, P95, Max summarize the distribution.
	Mean, P50, P95, Max float64
}

// Summarize computes Stats over xs.
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	st := Stats{N: len(xs), Mean: Mean(xs), P50: Percentile(xs, 50), P95: Percentile(xs, 95)}
	st.Max = Percentile(xs, 100)
	return st
}

// FormatPct renders a [0,1] fraction as a percentage with two
// decimals, the format used in the paper's accuracy figures.
func FormatPct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
